package patomic

// Combining variants of the Figure 4 protocol (pmem/combine.go). The
// own-install flush+fence of CompareAndSwap is the last per-operation
// fence the elision layer cannot remove: it guards a linearization
// point. CompareAndSwapCombined defers exactly that fence to the
// thread's combine buffer; every other arm of the protocol — the help
// path, the failed-install persist, the torn-view retry — keeps the full
// discipline, because those arms make *other* threads' installs durable
// and a helper must never publish an install it has merely buffered.
//
// The deferral inverts the transform's visible-implies-durable
// invariant for the buffered cell, so the read side grows a probe:
// LoadCombined (and the failure witness of CompareAndSwapCombined)
// consult the device's combine-pending tags and force a foreign buffered
// install durable before returning a value that depends on it. An
// operation that completes on the strength of its *own* buffered install
// instead inherits its thread's undrained ticket and may vanish with it
// at a crash — the contract the buffered durable-linearizability checker
// enforces.

import "mirror/internal/pmem"

// CompareAndSwapCombined is CompareAndSwap with the own-install
// flush+fence deferred to the thread's combine buffer. On a
// non-combining device it degrades to CompareAndSwap exactly.
func (m *Mem) CompareAndSwapCombined(ctx *Ctx, off uint64, expected, newVal uint64) (bool, uint64) {
	if !m.P.Combines() {
		return m.CompareAndSwap(ctx, off, expected, newVal)
	}
	for {
		pv, ps := m.P.LoadPair(off)
		vv, vs := m.V.LoadPair(off)

		if ps == vs+1 {
			// Help path: full discipline, as in CompareAndSwap.
			m.ensureDurable(ctx, off, m.P.PersistEpoch())
			m.V.DWCAS(off, vv, vs, pv, ps)
			m.noteHelp(ctx)
			continue
		}
		if ps != vs {
			m.noteRetry(ctx)
			continue
		}
		if pv != expected {
			// Fail without writing. The witness pv may be another
			// thread's buffered install: an operation about to complete
			// because of it (a failed insert observing its key present)
			// must outlive it, so force it durable first.
			m.P.CombineProbe(&ctx.FS, off)
			return false, pv
		}

		ok, curV, curS := m.P.DWCAS(off, pv, ps, newVal, ps+1)
		if ok {
			// Buffer before the mirror: the registration must be
			// ordered before any thread can observe the install in
			// rep_v (same ordering contract as CompareAndSwapRelaxed).
			drain := m.P.CombineAdd(&ctx.FS, off)
			m.V.DWCAS(off, pv, ps, newVal, ps+1)
			if drain {
				m.P.CombineDrain(&ctx.FS, pmem.DrainCapacity)
			}
			return true, pv
		}
		// Failed install: persist the competing write before touching
		// rep_v, as in the full protocol.
		m.ensureDurable(ctx, off, m.P.PersistEpoch())
		if curV == expected {
			m.noteRetry(ctx)
			continue
		}
		m.V.DWCAS(off, vv, vs, curV, curS)
		return false, curV
	}
}

// LoadCombined is Load plus the read-side conflict probe: when the value
// just read is (or shares a line with) another thread's buffered
// install, the probe commits the line before returning, so the caller's
// operation never completes durably on top of a value that could still
// vanish. The probe runs after the read — probing first would race a
// concurrent buffering and miss it.
func (m *Mem) LoadCombined(ctx *Ctx, off uint64) uint64 {
	v := m.V.Load(off)
	m.P.CombineProbe(&ctx.FS, off)
	return v
}

// LoadAdopted is Load plus the *adopting* conflict resolution, for
// traversal loads inside update operations: a crossed foreign buffered
// install is enrolled into the caller's own combine buffer instead of
// being fenced on the spot, so the walker's eventual drain commits its
// whole witnessed path under one fence. The caller's operation then
// either carries its own undrained ticket (and may vanish with the
// adopted dependencies — reachability keeps the crash state consistent)
// or must commit the witness before returning a verdict
// (pmem.CombineWitness). Plain reads must use LoadCombined.
func (m *Mem) LoadAdopted(ctx *Ctx, off uint64) uint64 {
	v := m.V.Load(off)
	m.P.CombineAdoptRead(&ctx.FS, off)
	return v
}
