package patomic

// Contended Exchange test: after every round of concurrent exchanges the
// replica invariants of §5 (Lemmas 5.3–5.5) must hold, every thread's
// returned previous value must chain (exchange is an atomic swap, so the
// set of returned values plus the final value is exactly the set of values
// ever installed, each seen once), and the per-Ctx statistic shards must
// sum consistently.

import (
	"sync"
	"testing"
)

func TestExchangeContendedInvariants(t *testing.T) {
	const (
		goroutines = 4
		perRound   = 64
		rounds     = 25
	)
	m := newMem(64)
	initCell(m, 0)
	ctxs := make([]*Ctx, goroutines)
	for g := range ctxs {
		ctxs[g] = &Ctx{}
	}
	next := uint64(1)
	for round := 0; round < rounds; round++ {
		// Each goroutine exchanges a disjoint set of distinct values into
		// the one cell; prev[v] records the value each exchange displaced.
		prev := make([][]uint64, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			base := next + uint64(g*perRound)
			wg.Add(1)
			go func(g int, base uint64) {
				defer wg.Done()
				for i := uint64(0); i < perRound; i++ {
					prev[g] = append(prev[g], m.Exchange(ctxs[g], cell, base+i))
				}
			}(g, base)
		}
		wg.Wait()
		next += uint64(goroutines * perRound)

		if msg := m.CheckInvariants(cell); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
		// Swap-chain check: every installed value is displaced exactly
		// once, except the final value, which is still installed; plus
		// one displacement of the round's starting value.
		seen := make(map[uint64]int)
		for g := range prev {
			for _, v := range prev[g] {
				seen[v]++
			}
		}
		final := m.Load(cell)
		displaced := 0
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("round %d: value %d displaced %d times", round, v, n)
			}
			if v != 0 && (v < next-uint64(goroutines*perRound) || v >= next) {
				// Must be this round's starting value (the previous
				// round's final), never a stale historical value.
				if v != 0 && seen[v] == 1 && v == final {
					t.Fatalf("round %d: final value %d also displaced", round, v)
				}
			}
			displaced++
		}
		if displaced != goroutines*perRound {
			t.Fatalf("round %d: %d displacements, want %d", round, displaced, goroutines*perRound)
		}
		if _, ok := seen[final]; ok {
			t.Fatalf("round %d: final value %d was also returned as displaced", round, final)
		}
	}
	// Stats must equal the sum of the worker shards exactly. Adoption is
	// lazy — a context that never helped or retried carries no counts and
	// may legitimately remain unregistered.
	h, r := m.Stats()
	t.Logf("helps=%d retries=%d", h, r)
	var shardSum uint64
	for _, c := range ctxs {
		shardSum += c.helps.Load() + c.retries.Load()
		if c.mem == nil && (c.helps.Load() != 0 || c.retries.Load() != 0) {
			t.Error("Ctx holds counts but was never adopted as a shard")
		}
	}
	if h+r != shardSum {
		t.Errorf("Stats() = %d, want the exact worker shard sum %d", h+r, shardSum)
	}
}

// TestCtxTwoMemsPanics checks the Ctx-to-Mem binding: using one context's
// statistics shard with a second Mem must panic rather than corrupt counts.
func TestCtxTwoMemsPanics(t *testing.T) {
	m1 := newMem(64)
	ctx := initCell(m1, 0)
	m1.noteHelp(ctx) // bind to m1
	m2 := newMem(64)
	defer func() {
		if recover() == nil {
			t.Error("shard use with a second Mem should panic")
		}
	}()
	m2.noteHelp(ctx)
}
