package verify

import (
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/queue"
	"mirror/internal/structures/skiplist"
)

func newEngine() engine.Engine {
	return engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 20, Track: true})
}

func TestListOk(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	l := list.New(e, 0)
	for _, k := range []uint64{5, 1, 9, 3} {
		l.Insert(c, k, k)
	}
	l.Delete(c, 5)
	if r := List(e, c, 0); !r.Ok() {
		t.Errorf("healthy list flagged: %s", r)
	}
}

func TestListDetectsDisorder(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	l := list.New(e, 0)
	l.Insert(c, 5, 5)
	l.Insert(c, 9, 9)
	// Corrupt: swap the key of the first node above the second's.
	head := e.Load(c, e.RootRef(), 0)
	e.Store(c, head, 0, 100)
	if r := List(e, c, 0); r.Ok() {
		t.Error("disorder not detected")
	}
}

func TestHashTableOk(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	h := hashtable.New(e, c, 16)
	for k := uint64(1); k <= 200; k++ {
		h.Insert(c, k, k)
	}
	if r := HashTable(e, c, 0); !r.Ok() {
		t.Errorf("healthy table flagged: %s", r)
	}
}

func TestHashTableDetectsWrongBucket(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	h := hashtable.New(e, c, 16)
	h.Insert(c, 1, 1)
	// Corrupt: rewrite the stored key so it no longer matches its bucket.
	arr := e.Load(c, e.RootRef(), 0)
	for b := 0; b < 16; b++ {
		node := e.Load(c, arr, b)
		if node != 0 {
			e.Store(c, node, 0, 7777)
		}
	}
	if r := HashTable(e, c, 0); r.Ok() {
		t.Error("wrong-bucket key not detected")
	}
}

func TestBSTOk(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	b := bst.New(e, c)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		b.Insert(c, uint64(rng.Intn(1000)+1), 1)
	}
	for i := 0; i < 100; i++ {
		b.Delete(c, uint64(rng.Intn(1000)+1))
	}
	if r := BST(e, c, 2); !r.Ok() {
		t.Errorf("healthy bst flagged: %s", r)
	}
}

func TestBSTDetectsOrderViolation(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	b := bst.New(e, c)
	b.Insert(c, 100, 1)
	b.Insert(c, 50, 1)
	b.Insert(c, 150, 1)
	// Corrupt a routing key.
	root := e.Load(c, e.RootRef(), 2)
	s := e.Load(c, root, 2) &^ 3
	inner := e.Load(c, s, 2) &^ 3 // first real internal node
	e.Store(c, inner, 0, 1)       // absurd routing key
	if r := BST(e, c, 2); r.Ok() {
		t.Error("routing violation not detected")
	}
}

func TestSkipListOk(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	s := skiplist.New(e, c)
	for k := uint64(1); k <= 500; k++ {
		s.Insert(c, k, k)
	}
	for k := uint64(1); k <= 500; k += 3 {
		s.Delete(c, k)
	}
	if r := SkipList(e, c, 3, skiplist.MaxLevel); !r.Ok() {
		t.Errorf("healthy skiplist flagged: %s", r)
	}
}

func TestQueueOk(t *testing.T) {
	e := newEngine()
	c := e.NewCtx()
	q := queue.New(e, c)
	for v := uint64(1); v <= 50; v++ {
		q.Enqueue(c, v)
	}
	q.Dequeue(c)
	if r := Queue(e, c, 4); !r.Ok() {
		t.Errorf("healthy queue flagged: %s", r)
	}
}

// TestAllStructuresAfterCrashRecovery is the fsck integration: build, run
// a mixed workload, crash, recover, and verify structural invariants.
func TestAllStructuresAfterCrashRecovery(t *testing.T) {
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
		t.Run(kind.String(), func(t *testing.T) {
			e := engine.New(engine.Config{Kind: kind, Words: 1 << 21, Track: true})
			c := e.NewCtx()
			l := list.New(e, 0)
			h := hashtable.NewAt(e, c, 32, 1)
			b := bst.NewAt(e, c, 4)
			s := skiplist.NewAt(e, c, 5)
			q := queue.NewAt(e, c, 6)
			rng := rand.New(rand.NewSource(33))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(200) + 1)
				switch rng.Intn(3) {
				case 0:
					l.Insert(c, k, k)
					h.Insert(c, k, k)
					b.Insert(c, k, k)
					s.Insert(c, k, k)
					q.Enqueue(c, k)
				case 1:
					l.Delete(c, k)
					h.Delete(c, k)
					b.Delete(c, k)
					s.Delete(c, k)
				default:
					q.Dequeue(c)
				}
			}
			e.Crash(pmem.CrashRandom, rng)
			e.Recover(func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
				list.TracerAt(e, 0)(read, visit)
				hashtable.TracerAt(e, 1)(read, visit)
				bst.TracerAt(e, 4)(read, visit)
				skiplist.TracerAt(e, 5)(read, visit)
				queue.TracerAt(e, 6)(read, visit)
			})
			c = e.NewCtx()
			if r := List(e, c, 0); !r.Ok() {
				t.Errorf("list after recovery: %s", r)
			}
			if r := HashTable(e, c, 1); !r.Ok() {
				t.Errorf("hashtable after recovery: %s", r)
			}
			if r := BST(e, c, 4); !r.Ok() {
				t.Errorf("bst after recovery: %s", r)
			}
			if r := SkipList(e, c, 5, skiplist.MaxLevel); !r.Ok() {
				t.Errorf("skiplist after recovery: %s", r)
			}
			if r := Queue(e, c, 6); !r.Ok() {
				t.Errorf("queue after recovery: %s", r)
			}
		})
	}
}
