// Package verify is the post-recovery consistency checker ("fsck") for the
// structures in this repository. Crash tests call it after every
// crash+recovery cycle: beyond the history checks of internal/crashtest,
// it validates the *structural* invariants a corrupted recovery would
// break — sorted order and mark discipline in lists, BST ordering and
// external-ness, skip-list level coherence, and (for Mirror engines) the
// per-cell replica invariants of Lemmas 5.3–5.5.
package verify

import (
	"fmt"

	"mirror/internal/engine"
	"mirror/internal/structures"
)

// Report collects the problems found by a check.
type Report struct {
	Problems []string
}

// Ok reports whether the check found no problems.
func (r *Report) Ok() bool { return len(r.Problems) == 0 }

func (r *Report) addf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	if r.Ok() {
		return "ok"
	}
	s := ""
	for _, p := range r.Problems {
		s += p + "\n"
	}
	return s
}

// List checks a Harris list rooted at (root field): keys strictly
// ascending, no cycles, marked nodes tolerated (logically deleted).
func List(e engine.Engine, c *engine.Ctx, rootField int) *Report {
	r := &Report{}
	e.OpBegin(c)
	defer e.OpEnd(c)
	checkChain(e, c, e.RootRef(), rootField, r)
	return r
}

// checkChain validates one sorted chain hanging off (ref, field).
func checkChain(e engine.Engine, c *engine.Ctx, ref engine.Ref, field int, r *Report) {
	const fKey, fNext = 0, 2
	seen := make(map[engine.Ref]bool)
	prev := uint64(0)
	first := true
	curr := structures.Unmark(e.TraversalLoad(c, ref, field))
	for curr != 0 {
		if seen[curr] {
			r.addf("list: cycle at node %d", curr)
			return
		}
		seen[curr] = true
		next := e.TraversalLoad(c, curr, fNext)
		key := e.TraversalLoad(c, curr, fKey)
		if !structures.Marked(next) {
			if !first && key <= prev {
				r.addf("list: order violation %d after %d", key, prev)
			}
			prev, first = key, false
		}
		if key == 0 || key > structures.KeyMax {
			r.addf("list: node %d has out-of-range key %d", curr, key)
		}
		curr = structures.Unmark(next)
	}
}

// HashTable checks every bucket chain and that keys hash to their bucket.
func HashTable(e engine.Engine, c *engine.Ctx, rootField int) *Report {
	r := &Report{}
	e.OpBegin(c)
	defer e.OpEnd(c)
	arr := e.Load(c, e.RootRef(), rootField)
	if arr == 0 {
		r.addf("hashtable: no bucket array")
		return r
	}
	buckets := int(e.Load(c, e.RootRef(), rootField+1))
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		r.addf("hashtable: bad bucket count %d", buckets)
		return r
	}
	shift := uint(64)
	for 1<<(64-shift) != uint64(buckets) {
		shift--
	}
	const fKey, fNext = 0, 2
	for b := 0; b < buckets; b++ {
		checkChain(e, c, arr, b, r)
		curr := structures.Unmark(e.TraversalLoad(c, arr, b))
		for curr != 0 {
			key := e.TraversalLoad(c, curr, fKey)
			if int((key*11400714819323198485)>>shift) != b {
				r.addf("hashtable: key %d in wrong bucket %d", key, b)
			}
			curr = structures.Unmark(e.TraversalLoad(c, curr, fNext))
		}
	}
	return r
}

// BST checks the external-tree invariants: internal nodes have two
// children, leaves none; routing keys order the subtrees; no cycles.
func BST(e engine.Engine, c *engine.Ctx, rootField int) *Report {
	r := &Report{}
	e.OpBegin(c)
	defer e.OpEnd(c)
	const fKey, fLeft, fRight = 0, 2, 3
	root := e.Load(c, e.RootRef(), rootField)
	if root == 0 {
		r.addf("bst: no root")
		return r
	}
	seen := make(map[engine.Ref]bool)
	type frame struct {
		ref      engine.Ref
		min, max uint64 // exclusive bounds; 0 = unbounded
	}
	stack := []frame{{root, 0, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[f.ref] {
			r.addf("bst: node %d reachable twice", f.ref)
			continue
		}
		seen[f.ref] = true
		key := e.TraversalLoad(c, f.ref, fKey)
		left := e.TraversalLoad(c, f.ref, fLeft) &^ 3
		right := e.TraversalLoad(c, f.ref, fRight) &^ 3
		if (left == 0) != (right == 0) {
			r.addf("bst: node %d has exactly one child (tree must be external)", f.ref)
		}
		if f.min != 0 && key < f.min {
			r.addf("bst: key %d below subtree bound %d", key, f.min)
		}
		if f.max != 0 && key >= f.max {
			r.addf("bst: key %d at or above subtree bound %d", key, f.max)
		}
		if left != 0 {
			stack = append(stack, frame{left, f.min, key})
		}
		if right != 0 {
			stack = append(stack, frame{right, key, f.max})
		}
	}
	return r
}

// SkipList checks that every level is sorted, that level-i membership
// implies a tower of height > i, and that level 0 is a superset of every
// higher level.
func SkipList(e engine.Engine, c *engine.Ctx, rootField int, maxLevel int) *Report {
	r := &Report{}
	e.OpBegin(c)
	defer e.OpEnd(c)
	const fKey, fTop, fNext = 0, 2, 3
	head := e.Load(c, e.RootRef(), rootField)
	if head == 0 {
		r.addf("skiplist: no head")
		return r
	}
	level0 := make(map[engine.Ref]bool)
	for i := 0; i < maxLevel; i++ {
		prev := uint64(0)
		first := true
		seen := make(map[engine.Ref]bool)
		curr := structures.Unmark(e.TraversalLoad(c, head, fNext+i))
		for curr != 0 {
			if seen[curr] {
				r.addf("skiplist: cycle at level %d node %d", i, curr)
				break
			}
			seen[curr] = true
			top := int(e.TraversalLoad(c, curr, fTop))
			if top <= i {
				r.addf("skiplist: node %d with height %d linked at level %d", curr, top, i)
				break
			}
			next := e.TraversalLoad(c, curr, fNext+i)
			key := e.TraversalLoad(c, curr, fKey)
			if !structures.Marked(next) {
				if !first && key <= prev {
					r.addf("skiplist: level %d order violation %d after %d", i, key, prev)
				}
				prev, first = key, false
			}
			if i == 0 {
				level0[curr] = true
			} else if !level0[curr] && !structures.Marked(next) {
				r.addf("skiplist: unmarked node %d at level %d missing from level 0", curr, i)
			}
			curr = structures.Unmark(next)
		}
	}
	return r
}

// Queue checks the FIFO chain: head reaches tail, no cycles.
func Queue(e engine.Engine, c *engine.Ctx, rootField int) *Report {
	r := &Report{}
	e.OpBegin(c)
	defer e.OpEnd(c)
	const fNext = 1
	head := e.Load(c, e.RootRef(), rootField)
	tail := e.Load(c, e.RootRef(), rootField+1)
	if head == 0 || tail == 0 {
		r.addf("queue: missing head or tail")
		return r
	}
	seen := make(map[engine.Ref]bool)
	sawTail := false
	for n := head; n != 0; n = e.TraversalLoad(c, n, fNext) {
		if seen[n] {
			r.addf("queue: cycle at node %d", n)
			return r
		}
		seen[n] = true
		if n == tail {
			sawTail = true
		}
	}
	if !sawTail {
		r.addf("queue: tail %d not reachable from head %d", tail, head)
	}
	return r
}
