package mirror

import (
	"sync"
	"testing"

	"mirror/internal/dwcas"
)

func TestRuntimeDefaults(t *testing.T) {
	rt := New(Options{})
	if rt.Kind() != MirrorDRAM {
		t.Errorf("default kind = %v, want MirrorDRAM", rt.Kind())
	}
}

func TestAllStructuresOneRuntime(t *testing.T) {
	rt := New(Options{})
	c := rt.NewCtx()
	sets := []Set{
		rt.NewList(c),
		rt.NewHashTable(c, 64),
		rt.NewBST(c),
		rt.NewSkipList(c),
	}
	for i, s := range sets {
		key := uint64(100 + i)
		if !s.Insert(c, key, key*2) {
			t.Fatalf("%s: insert failed", s.Name())
		}
		if v, ok := s.Get(c, key); !ok || v != key*2 {
			t.Fatalf("%s: Get = (%d,%v)", s.Name(), v, ok)
		}
	}
	// Structures are independent.
	if sets[0].Contains(c, 101) {
		t.Error("list sees the hash table's key")
	}
}

func TestCrashRecoverAllStructures(t *testing.T) {
	rt := New(Options{})
	c := rt.NewCtx()
	sets := []Set{
		rt.NewList(c),
		rt.NewHashTable(c, 64),
		rt.NewBST(c),
		rt.NewSkipList(c),
	}
	for i, s := range sets {
		for k := uint64(1); k <= 50; k++ {
			s.Insert(c, k*10+uint64(i), k)
		}
		for k := uint64(1); k <= 50; k += 2 {
			s.Delete(c, k*10+uint64(i))
		}
	}
	rt.Crash(CrashDropAll, 1)
	rt.Recover()
	c = rt.NewCtx()
	for i, s := range sets {
		for k := uint64(1); k <= 50; k++ {
			want := k%2 == 0
			if got := s.Contains(c, k*10+uint64(i)); got != want {
				t.Fatalf("%s key %d: %v, want %v", s.Name(), k*10+uint64(i), got, want)
			}
		}
		// Fully operational post-recovery.
		if !s.Insert(c, 7777, 1) || !s.Delete(c, 7777) {
			t.Fatalf("%s not operational after recovery", s.Name())
		}
	}
}

// TestRecoverParallelThroughFacade recovers a multi-structure runtime with
// the worker-pool pipeline and checks it agrees with sequential recovery.
func TestRecoverParallelThroughFacade(t *testing.T) {
	for _, par := range []int{1, 4} {
		rt := New(Options{})
		c := rt.NewCtx()
		sets := []Set{
			rt.NewList(c),
			rt.NewHashTable(c, 64),
			rt.NewBST(c),
			rt.NewSkipList(c),
		}
		for i, s := range sets {
			for k := uint64(1); k <= 60; k++ {
				s.Insert(c, k*10+uint64(i), k)
			}
			for k := uint64(1); k <= 60; k += 3 {
				s.Delete(c, k*10+uint64(i))
			}
		}
		rt.Crash(CrashDropAll, 5)
		rt.RecoverParallel(par)
		c = rt.NewCtx()
		for i, s := range sets {
			for k := uint64(1); k <= 60; k++ {
				want := k%3 != 1
				if got := s.Contains(c, k*10+uint64(i)); got != want {
					t.Fatalf("par=%d %s key %d: %v, want %v", par, s.Name(), k*10+uint64(i), got, want)
				}
			}
			if !s.Insert(c, 8888, 1) || !s.Delete(c, 8888) {
				t.Fatalf("par=%d %s not operational after parallel recovery", par, s.Name())
			}
		}
	}
}

func TestBaselineEnginesThroughSameAPI(t *testing.T) {
	for _, kind := range []Kind{OrigDRAM, OrigNVMM, Izraelevitz, NVTraverse, MirrorNVMM} {
		rt := New(Options{Kind: kind})
		c := rt.NewCtx()
		s := rt.NewBST(c)
		if !s.Insert(c, 5, 50) || !s.Contains(c, 5) {
			t.Errorf("%v: basic ops failed", kind)
		}
	}
}

func TestConcurrentUseThroughFacade(t *testing.T) {
	rt := New(Options{})
	c0 := rt.NewCtx()
	s := rt.NewHashTable(c0, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := rt.NewCtx()
			base := uint64(w*100 + 1)
			for i := uint64(0); i < 100; i++ {
				s.Insert(c, base+i, base+i)
			}
		}(w)
	}
	wg.Wait()
	for k := uint64(1); k <= 800; k++ {
		if !s.Contains(c0, k) {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestCountersExposed(t *testing.T) {
	rt := New(Options{})
	c := rt.NewCtx()
	s := rt.NewList(c)
	s.Insert(c, 1, 1)
	if fl, fe := rt.Counters(); fl == 0 || fe == 0 {
		t.Errorf("Counters = (%d,%d), want nonzero", fl, fe)
	}
}

func TestQueueThroughFacade(t *testing.T) {
	rt := New(Options{})
	c := rt.NewCtx()
	q := rt.NewQueue(c)
	for v := uint64(1); v <= 20; v++ {
		q.Enqueue(c, v)
	}
	for v := uint64(1); v <= 5; v++ {
		q.Dequeue(c)
	}
	rt.Crash(CrashDropAll, 3)
	rt.Recover()
	c = rt.NewCtx()
	for v := uint64(6); v <= 20; v++ {
		got, ok := q.Dequeue(c)
		if !ok || got != v {
			t.Fatalf("after recovery Dequeue = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	if _, ok := q.Dequeue(c); ok {
		t.Fatal("queue should be empty")
	}
}

// TestFallbackDWCASEndToEnd runs a full concurrent crash/recovery cycle
// with the portable seqlock DWCAS emulation, covering non-amd64 platforms'
// code path on this host.
func TestFallbackDWCASEndToEnd(t *testing.T) {
	dwcas.SetFallback(true)
	defer dwcas.SetFallback(false)
	rt := New(Options{})
	c0 := rt.NewCtx()
	s := rt.NewHashTable(c0, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := rt.NewCtx()
			base := uint64(w*200 + 1)
			for i := uint64(0); i < 200; i++ {
				s.Insert(c, base+i, base+i)
			}
			for i := uint64(0); i < 200; i += 2 {
				s.Delete(c, base+i)
			}
		}(w)
	}
	wg.Wait()
	rt.Crash(CrashRandom, 11)
	rt.Recover()
	c := rt.NewCtx()
	for k := uint64(1); k <= 800; k++ {
		want := (k-1)%2 == 1
		if got := s.Contains(c, k); got != want {
			t.Fatalf("fallback path: key %d = %v, want %v", k, got, want)
		}
	}
}

func TestTooManyStructuresPanics(t *testing.T) {
	rt := New(Options{})
	c := rt.NewCtx()
	defer func() {
		if recover() == nil {
			t.Error("expected panic after exhausting root fields")
		}
	}()
	for i := 0; i < 100; i++ {
		rt.NewList(c)
	}
}
