// taskqueue demonstrates the Mirror transformation beyond sets: a durable
// work queue feeding concurrent consumers, where the machine loses power
// repeatedly mid-processing and no acknowledged task is ever lost or
// executed twice.
//
// The pipeline uses two durable structures on one persistent heap: a FIFO
// queue of pending task ids and a hash table of completed task results.
// A task is "acknowledged" once its result insert returns — from that
// moment it must survive any crash. Tasks that were in flight when the
// power failed are re-derived on recovery: anything neither pending nor
// completed is re-enqueued (at-least-once delivery, exactly-once effect
// because the result insert is idempotent per task id).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"mirror"
	"mirror/internal/pmem"
)

func main() {
	var (
		tasks   = flag.Int("tasks", 5000, "number of tasks to process")
		workers = flag.Int("workers", 4, "concurrent consumers")
		crashes = flag.Int("crashes", 5, "power failures to inject")
		seed    = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	rt := mirror.New(mirror.Options{Words: 1 << 22})
	ctx := rt.NewCtx()
	pending := rt.NewQueue(ctx)
	results := rt.NewHashTable(ctx, 2048)
	rng := rand.New(rand.NewSource(*seed))

	for id := uint64(1); id <= uint64(*tasks); id++ {
		pending.Enqueue(ctx, id)
	}
	fmt.Printf("enqueued %d tasks\n", *tasks)

	crashesLeft := *crashes
	for {
		// Consumers drain the queue, compute, and acknowledge.
		var wg sync.WaitGroup
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil && r != pmem.ErrFrozen {
						panic(r)
					}
				}()
				c := rt.NewCtx()
				for {
					id, ok := pending.Dequeue(c)
					if !ok {
						return
					}
					// "Process" the task, then acknowledge durably.
					results.Insert(c, id, id*id)
				}
			}()
		}

		if crashesLeft > 0 {
			time.Sleep(time.Duration(rng.Intn(300)+20) * time.Microsecond)
			rt.Freeze()
			wg.Wait()
			crashesLeft--
			rt.Crash(mirror.CrashPolicy(rng.Intn(3)), rng.Int63())
			rt.Recover()
			ctx = rt.NewCtx()

			// Redrive: any task neither completed nor still pending was
			// in flight when the power failed; re-enqueue it.
			inQueue := map[uint64]bool{}
			for _, id := range drainPeek(rt, pending, ctx) {
				inQueue[id] = true
			}
			redriven := 0
			for id := uint64(1); id <= uint64(*tasks); id++ {
				if !results.Contains(ctx, id) && !inQueue[id] {
					pending.Enqueue(ctx, id)
					redriven++
				}
			}
			done := 0
			for id := uint64(1); id <= uint64(*tasks); id++ {
				if results.Contains(ctx, id) {
					done++
				}
			}
			fmt.Printf("crash %d: %d done, %d redriven\n", *crashes-crashesLeft, done, redriven)
			continue
		}

		wg.Wait()
		break
	}

	// Verify exactly-once effects.
	for id := uint64(1); id <= uint64(*tasks); id++ {
		v, ok := results.Get(ctx, id)
		if !ok || v != id*id {
			fmt.Printf("FAILED: task %d result (%d,%v)\n", id, v, ok)
			os.Exit(1)
		}
	}
	fmt.Printf("all %d tasks completed exactly once across %d crashes\n", *tasks, *crashes)
}

// drainPeek snapshots the queue contents non-destructively by dequeuing
// and re-enqueueing (the system is quiesced right after recovery).
func drainPeek(rt *mirror.Runtime, q *mirror.Queue, c *mirror.Ctx) []uint64 {
	var ids []uint64
	for {
		id, ok := q.Dequeue(c)
		if !ok {
			break
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		q.Enqueue(c, id)
	}
	return ids
}
