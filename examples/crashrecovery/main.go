// crashrecovery tortures a durable structure with repeated mid-workload
// power failures: concurrent writers run until a random freeze, the crash
// is taken under a random eviction adversary, recovery runs, and the
// per-key single-writer histories are verified — durable linearizability,
// live, across many crash cycles on one persistent heap.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"mirror"
	"mirror/internal/pmem"
)

func main() {
	var (
		cycles  = flag.Int("cycles", 10, "crash cycles")
		workers = flag.Int("workers", 4, "concurrent writers")
		keysPer = flag.Int("keys", 64, "keys owned per writer")
		seed    = flag.Int64("seed", 1, "base seed (fixed default for reproducible runs)")
	)
	flag.Parse()

	rt := mirror.New(mirror.Options{Words: 1 << 22})
	ctx := rt.NewCtx()
	set := rt.NewSkipList(ctx)
	rng := rand.New(rand.NewSource(*seed))

	// expected holds the durable truth: key -> present.
	expected := make(map[uint64]bool)
	var mu sync.Mutex

	for cycle := 1; cycle <= *cycles; cycle++ {
		inflight := make([]uint64, *workers)
		inflightIns := make([]bool, *workers)
		var wg sync.WaitGroup
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int, seed int64) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil && r != pmem.ErrFrozen {
						panic(r)
					}
				}()
				c := rt.NewCtx()
				lrng := rand.New(rand.NewSource(seed))
				base := uint64(w**keysPer + 1)
				for i := 0; i < 50000; i++ {
					key := base + uint64(lrng.Intn(*keysPer))
					ins := lrng.Intn(2) == 0
					inflight[w], inflightIns[w] = key, ins
					var done bool
					if ins {
						done = set.Insert(c, key, key)
					} else {
						done = set.Delete(c, key)
					}
					if done {
						mu.Lock()
						expected[key] = ins
						mu.Unlock()
					}
					inflight[w] = 0
				}
			}(w, rng.Int63())
		}
		time.Sleep(time.Duration(rng.Intn(3000)) * time.Microsecond)
		rt.Freeze()
		wg.Wait()

		policy := mirror.CrashPolicy(rng.Intn(3))
		rt.Crash(policy, rng.Int63())
		rt.Recover()
		ctx = rt.NewCtx()

		// Verify every key against the durable truth; in-flight ops may
		// have gone either way, so adopt whatever the structure says.
		violations := 0
		cut := make(map[uint64]bool)
		for w := 0; w < *workers; w++ {
			if inflight[w] != 0 {
				cut[inflight[w]] = true
			}
		}
		for key := uint64(1); key <= uint64(*workers**keysPer); key++ {
			got := set.Contains(ctx, key)
			want, known := expected[key]
			if cut[key] {
				expected[key] = got // adopt the surviving outcome
				continue
			}
			if known && got != want {
				fmt.Printf("cycle %d: VIOLATION key %d: present=%v, want %v\n",
					cycle, key, got, want)
				violations++
			}
			if !known && got {
				fmt.Printf("cycle %d: VIOLATION phantom key %d\n", cycle, key)
				violations++
			}
		}
		if violations > 0 {
			fmt.Println("durable linearizability FAILED")
			os.Exit(1)
		}
		live := 0
		for _, p := range expected {
			if p {
				live++
			}
		}
		fmt.Printf("cycle %2d: policy=%d crash+recovery ok, %d keys live\n",
			cycle, policy, live)
	}
	fmt.Printf("all %d crash cycles passed\n", *cycles)
}
