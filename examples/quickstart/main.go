// Quickstart: create a durable hash table with the Mirror transformation,
// crash the machine, recover, and observe that every completed operation
// survived.
package main

import (
	"fmt"

	"mirror"
)

func main() {
	// A runtime owns the simulated NVMM + DRAM devices. MirrorDRAM is
	// the default: persistent replica on NVMM, volatile replica on DRAM.
	rt := mirror.New(mirror.Options{})
	ctx := rt.NewCtx()

	// Any of the four lock-free structures becomes durable through the
	// same one-line construction — the paper's automatic transformation.
	set := rt.NewHashTable(ctx, 1024)

	for k := uint64(1); k <= 100; k++ {
		set.Insert(ctx, k, k*k)
	}
	for k := uint64(1); k <= 100; k += 2 {
		set.Delete(ctx, k)
	}
	fmt.Println("before crash: 50 even keys present")

	// Power failure: the DRAM replica is wiped and every write that was
	// not explicitly flushed+fenced is dropped (the most adversarial
	// eviction policy).
	rt.Crash(mirror.CrashDropAll, 42)
	rt.Recover()
	ctx = rt.NewCtx() // contexts do not survive crashes

	present := 0
	for k := uint64(1); k <= 100; k++ {
		if v, ok := set.Get(ctx, k); ok {
			if v != k*k {
				panic("torn value after recovery")
			}
			present++
			if k%2 == 1 {
				panic("deleted key resurrected")
			}
		} else if k%2 == 0 {
			panic("completed insert lost")
		}
	}
	fmt.Printf("after crash+recovery: %d keys present, all values intact\n", present)

	// The structure stays fully operational.
	set.Insert(ctx, 1000, 1)
	fmt.Println("post-recovery insert: ok")

	flushes, fences := rt.Counters()
	fmt.Printf("persistence instructions so far: %d flushes, %d fences\n", flushes, fences)
}
