// kvstore is a tiny durable key-value store CLI built on the Mirror
// transformation: a script of commands demonstrates that committed updates
// survive simulated power failures.
//
// Commands (stdin, one per line):
//
//	set <key> <value>
//	get <key>
//	del <key>
//	crash          — simulated power failure + recovery
//	stats
//
// Run without input to execute the built-in demo script.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mirror"
)

type store struct {
	rt  *mirror.Runtime
	ctx *mirror.Ctx
	set mirror.Set
}

func newStore() *store {
	rt := mirror.New(mirror.Options{})
	ctx := rt.NewCtx()
	return &store{rt: rt, ctx: ctx, set: rt.NewHashTable(ctx, 4096)}
}

func (s *store) exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	arg := func(i int) uint64 {
		if i >= len(fields) {
			return 0
		}
		v, _ := strconv.ParseUint(fields[i], 10, 64)
		return v
	}
	switch fields[0] {
	case "set":
		key, val := arg(1), arg(2)
		if key == 0 {
			return "ERR keys must be positive integers"
		}
		if !s.set.Insert(s.ctx, key, val) {
			// Set semantics: delete + insert to overwrite.
			s.set.Delete(s.ctx, key)
			s.set.Insert(s.ctx, key, val)
		}
		return fmt.Sprintf("OK %d=%d", key, val)
	case "get":
		if v, ok := s.set.Get(s.ctx, arg(1)); ok {
			return fmt.Sprintf("%d", v)
		}
		return "(nil)"
	case "del":
		if s.set.Delete(s.ctx, arg(1)) {
			return "OK"
		}
		return "(nil)"
	case "crash":
		s.rt.Crash(mirror.CrashDropAll, 7)
		s.rt.Recover()
		s.ctx = s.rt.NewCtx()
		return "CRASHED and recovered"
	case "stats":
		fl, fe := s.rt.Counters()
		return fmt.Sprintf("flushes=%d fences=%d", fl, fe)
	default:
		return "ERR unknown command " + fields[0]
	}
}

var demo = []string{
	"set 1 100",
	"set 2 200",
	"set 3 300",
	"del 2",
	"crash",
	"get 1",
	"get 2",
	"get 3",
	"set 4 400",
	"crash",
	"get 4",
	"stats",
}

func main() {
	s := newStore()
	stat, _ := os.Stdin.Stat()
	if stat.Mode()&os.ModeCharDevice != 0 {
		// No piped input: run the demo script.
		for _, line := range demo {
			fmt.Printf("> %s\n%s\n", line, s.exec(line))
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if out := s.exec(sc.Text()); out != "" {
			fmt.Println(out)
		}
	}
}
