package main

import (
	"sync"
	"testing"
	"time"

	"mirror"
	"mirror/internal/workload"
)

// spanRecorder wraps the native scan worker and records every scan's span
// (to-from+1 keys requested) and result size.
type spanRecorder struct {
	scanRMWWorker
	mu      *sync.Mutex
	spans   *[]uint64
	results *[]int
}

func (w spanRecorder) Scan(from, to uint64) int {
	n := w.scanRMWWorker.Scan(from, to)
	w.mu.Lock()
	*w.spans = append(*w.spans, to-from+1)
	*w.results = append(*w.results, n)
	w.mu.Unlock()
	return n
}

// TestYCSBEScanDistribution drives YCSB-E natively over the skip list and
// checks the scan-length distribution against the YCSB spec: request
// spans uniform on [1, 2*ScanMax] (so the mean request is ~ScanMax), and —
// with the key range half prefilled — a mean result size of ~span/2.
func TestYCSBEScanDistribution(t *testing.T) {
	const keyRange = 1 << 16
	const scanMax = 100
	rt := mirror.New(mirror.Options{
		Kind: mirror.MirrorDRAM, Words: keyRange*24 + 1<<20, DisableTracking: true,
	})
	ctx := rt.NewCtx()
	set := rt.NewSkipList(ctx)
	var (
		mu      sync.Mutex
		spans   []uint64
		results []int
	)
	target := workload.Target{
		Name: "skiplist",
		NewWorker: func() workload.Worker {
			base := buildWorker(set, rt.NewCtx()).(scanRMWWorker)
			return spanRecorder{base, &mu, &spans, &results}
		},
	}
	workload.PrefillHalf(target, keyRange, 1)
	mix, dist, _ := workload.YCSBMix('E')
	res := workload.Run(target, workload.Spec{
		KeyRange: keyRange,
		Mix:      mix,
		Threads:  2,
		Duration: 150 * time.Millisecond,
		Seed:     1,
		Dist:     dist,
		ScanMax:  scanMax,
	})
	if res.Scans == 0 {
		t.Fatal("YCSB-E ran no scans")
	}
	// The mix itself: 95% scans, 5% inserts.
	if frac := float64(res.Scans) / float64(res.Ops); frac < 0.90 || frac > 0.99 {
		t.Fatalf("scan fraction %.3f, want ~0.95", frac)
	}
	if len(spans) < 1000 {
		t.Fatalf("only %d recorded scans — too few to test the distribution", len(spans))
	}
	// Span bounds: uniform on [1, 2*scanMax] (edge clipping at the top of
	// the key range is possible but rare with zipfian's low-key bias).
	var sum float64
	quart := [4]int{}
	for _, s := range spans {
		if s < 1 || s > 2*scanMax+1 {
			t.Fatalf("scan span %d outside [1, %d]", s, 2*scanMax+1)
		}
		sum += float64(s)
		q := int((s - 1) * 4 / (2 * scanMax + 1))
		if q > 3 {
			q = 3
		}
		quart[q]++
	}
	mean := sum / float64(len(spans))
	if mean < 0.85*scanMax || mean > 1.15*scanMax {
		t.Fatalf("mean scan span %.1f, want ~%d (uniform [1, %d])", mean, scanMax, 2*scanMax)
	}
	// Coarse uniformity: each quartile of the span range holds 25%±10 of
	// the draws.
	for i, n := range quart {
		frac := float64(n) / float64(len(spans))
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("span quartile %d holds %.1f%% of draws, want ~25%%", i, 100*frac)
		}
	}
	// Result sizes: half the range is present, so a scan returns ~span/2
	// keys on average.
	var rsum float64
	for _, n := range results {
		rsum += float64(n)
	}
	rmean := rsum / float64(len(results))
	if rmean < 0.3*mean || rmean > 0.7*mean {
		t.Fatalf("mean scan result %.1f keys for mean span %.1f, want ~span/2", rmean, mean)
	}
}

// TestYCSBFNativeRMW checks the skip list worker serves RMW natively (the
// interface assertion holds) and that an RMW observably updates the value.
func TestYCSBFNativeRMW(t *testing.T) {
	rt := mirror.New(mirror.Options{
		Kind: mirror.MirrorDRAM, Words: 1 << 20, DisableTracking: true,
	})
	ctx := rt.NewCtx()
	set := rt.NewSkipList(ctx)
	w := buildWorker(set, rt.NewCtx())
	rmwer, ok := w.(workload.RMWer)
	if !ok {
		t.Fatal("skiplist worker does not implement workload.RMWer")
	}
	if _, ok := w.(workload.Scanner); !ok {
		t.Fatal("skiplist worker does not implement workload.Scanner")
	}
	if rmwer.RMW(7, 1) {
		t.Fatal("RMW on absent key succeeded")
	}
	w.Insert(7, 70)
	if !rmwer.RMW(7, 71) {
		t.Fatal("RMW on present key failed")
	}
	cv := set.(casser)
	if v, _ := cv.Get(ctx, 7); v != 71 {
		t.Fatalf("value after RMW = %d, want 71", v)
	}
	// BST: scans native, RMW falls back (no CasVal).
	bw := buildWorker(rt.NewBST(rt.NewCtx()), rt.NewCtx())
	if _, ok := bw.(workload.Scanner); !ok {
		t.Fatal("bst worker does not implement workload.Scanner")
	}
	if _, ok := bw.(workload.RMWer); ok {
		t.Fatal("bst worker claims native RMW without CasVal")
	}
}
