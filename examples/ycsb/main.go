// ycsb runs the YCSB core suite (A: 50% reads, B: 95% reads, C: read-only,
// D: read-latest, E: scan-heavy, F: read-modify-write, plus the paper's
// 80/10/10 mix) on a chosen structure under every persistence engine,
// printing a throughput comparison — a miniature interactive version of
// the paper's evaluation. Each YCSB letter runs its suite-default zipfian
// request distribution unless -dist overrides it. On ordered structures
// (bst, skiplist) YCSB-E scans run natively through Range, and on the
// skiplist YCSB-F read-modify-writes run natively through CasVal; other
// structures use workload.Run's documented point-operation fallbacks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mirror"
	"mirror/internal/workload"
)

func main() {
	var (
		structure = flag.String("structure", "hashtable", "list|hashtable|bst|skiplist")
		keyRange  = flag.Int("range", 1<<16, "key range (prefilled to half)")
		threads   = flag.Int("threads", 4, "worker goroutines")
		duration  = flag.Duration("duration", 300*time.Millisecond, "window per cell")
		latency   = flag.Bool("latency", true, "apply DRAM/NVMM latency models")
		letters   = flag.String("workloads", "A,B,C", "comma-separated YCSB letters (A..F)")
		distF     = flag.String("dist", "", "override the suite's request distribution (uniform|zipfian|hotspot)")
		skew      = flag.Float64("skew", 0, "distribution parameter (zipfian theta / hotspot fraction)")
	)
	flag.Parse()

	type column struct {
		name string
		mix  workload.Mix
		dist string
	}
	var mixes []column
	for _, part := range strings.Split(*letters, ",") {
		part = strings.TrimSpace(part)
		if len(part) != 1 {
			fmt.Fprintf(os.Stderr, "bad -workloads entry %q (want single letters A..F)\n", part)
			os.Exit(2)
		}
		mix, dist, ok := workload.YCSBMix(part[0])
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown YCSB workload %q\n", part)
			os.Exit(2)
		}
		if *distF != "" {
			dist = *distF
		}
		mixes = append(mixes, column{"YCSB-" + strings.ToUpper(part), mix, dist})
	}
	mixes = append(mixes, column{"80/10/10", workload.Mix801010, *distF})
	kinds := []mirror.Kind{
		mirror.OrigDRAM, mirror.OrigNVMM, mirror.Izraelevitz,
		mirror.NVTraverse, mirror.MirrorDRAM, mirror.MirrorNVMM,
	}

	fmt.Printf("%s, range %d, %d threads, %v per cell (Mops/s)\n",
		*structure, *keyRange, *threads, *duration)
	fmt.Printf("%-12s", "engine")
	for _, m := range mixes {
		fmt.Printf("%10s", m.name)
	}
	fmt.Println()

	for _, kind := range kinds {
		fmt.Printf("%-12s", kind)
		for _, m := range mixes {
			rt := mirror.New(mirror.Options{
				Kind:            kind,
				Words:           *keyRange*24 + 1<<20,
				Latency:         *latency,
				DisableTracking: true,
			})
			ctx := rt.NewCtx()
			var set mirror.Set
			switch *structure {
			case "list":
				set = rt.NewList(ctx)
			case "hashtable":
				set = rt.NewHashTable(ctx, pow2(*keyRange/2))
			case "bst":
				set = rt.NewBST(ctx)
			case "skiplist":
				set = rt.NewSkipList(ctx)
			default:
				fmt.Fprintf(os.Stderr, "unknown structure %q\n", *structure)
				os.Exit(2)
			}
			target := workload.Target{
				Name:          *structure,
				SortedPrefill: *structure == "list",
				NewWorker: func() workload.Worker {
					return buildWorker(set, rt.NewCtx())
				},
			}
			workload.PrefillHalf(target, uint64(*keyRange), 1)
			res := workload.Run(target, workload.Spec{
				KeyRange: uint64(*keyRange),
				Mix:      m.mix,
				Threads:  *threads,
				Duration: *duration,
				Seed:     1,
				Dist:     m.dist,
				Skew:     *skew,
			})
			fmt.Printf("%10.3f", res.MopsPerSec())
		}
		fmt.Println()
	}
}

type worker struct {
	set mirror.Set
	ctx *mirror.Ctx
}

func (w worker) Insert(key, val uint64) bool { return w.set.Insert(w.ctx, key, val) }
func (w worker) Delete(key uint64) bool      { return w.set.Delete(w.ctx, key) }
func (w worker) Contains(key uint64) bool    { return w.set.Contains(w.ctx, key) }

// Optional native capabilities of the underlying structures, detected by
// interface assertion so each worker only advertises what its structure
// really supports (workload.Run falls back per the Scanner/RMWer docs
// otherwise).
type ranger interface {
	Range(c *mirror.Ctx, from, to uint64, fn func(key, val uint64) bool)
}
type casser interface {
	Get(c *mirror.Ctx, key uint64) (uint64, bool)
	CasVal(c *mirror.Ctx, key, expect, repl uint64) bool
}

// buildWorker wraps the base worker with the native scan (Range) and RMW
// (Get + CasVal) paths its structure supports.
func buildWorker(set mirror.Set, ctx *mirror.Ctx) workload.Worker {
	w := worker{set, ctx}
	r, hasR := set.(ranger)
	cv, hasC := set.(casser)
	switch {
	case hasR && hasC:
		return scanRMWWorker{scanWorker{w, r}, cv}
	case hasR:
		return scanWorker{w, r}
	case hasC:
		return rmwWorker{w, cv}
	default:
		return w
	}
}

// scanWorker serves YCSB-E scans natively: count the present keys of
// [from, to] by ordered iteration.
type scanWorker struct {
	worker
	r ranger
}

func (w scanWorker) Scan(from, to uint64) int {
	n := 0
	w.r.Range(w.ctx, from, to, func(key, val uint64) bool {
		n++
		return true
	})
	return n
}

// rmwWorker serves YCSB-F read-modify-writes natively: read the current
// value, compare-and-set the new one. An absent key or a lost race is a
// failed RMW, as YCSB counts it.
type rmwWorker struct {
	worker
	cv casser
}

func (w rmwWorker) RMW(key, val uint64) bool { return rmw(w.ctx, w.cv, key, val) }

type scanRMWWorker struct {
	scanWorker
	cv casser
}

func (w scanRMWWorker) RMW(key, val uint64) bool { return rmw(w.ctx, w.cv, key, val) }

func rmw(ctx *mirror.Ctx, cv casser, key, val uint64) bool {
	cur, ok := cv.Get(ctx, key)
	if !ok {
		return false
	}
	return cv.CasVal(ctx, key, cur, val)
}

func pow2(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}
