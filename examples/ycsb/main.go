// ycsb runs the YCSB core suite (A: 50% reads, B: 95% reads, C: read-only,
// D: read-latest, E: scan-heavy, F: read-modify-write, plus the paper's
// 80/10/10 mix) on a chosen structure under every persistence engine,
// printing a throughput comparison — a miniature interactive version of
// the paper's evaluation. Each YCSB letter runs its suite-default zipfian
// request distribution unless -dist overrides it; scans fall back to point
// reads on structures without ordered iteration (see workload.Scanner).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mirror"
	"mirror/internal/workload"
)

func main() {
	var (
		structure = flag.String("structure", "hashtable", "list|hashtable|bst|skiplist")
		keyRange  = flag.Int("range", 1<<16, "key range (prefilled to half)")
		threads   = flag.Int("threads", 4, "worker goroutines")
		duration  = flag.Duration("duration", 300*time.Millisecond, "window per cell")
		latency   = flag.Bool("latency", true, "apply DRAM/NVMM latency models")
		letters   = flag.String("workloads", "A,B,C", "comma-separated YCSB letters (A..F)")
		distF     = flag.String("dist", "", "override the suite's request distribution (uniform|zipfian|hotspot)")
		skew      = flag.Float64("skew", 0, "distribution parameter (zipfian theta / hotspot fraction)")
	)
	flag.Parse()

	type column struct {
		name string
		mix  workload.Mix
		dist string
	}
	var mixes []column
	for _, part := range strings.Split(*letters, ",") {
		part = strings.TrimSpace(part)
		if len(part) != 1 {
			fmt.Fprintf(os.Stderr, "bad -workloads entry %q (want single letters A..F)\n", part)
			os.Exit(2)
		}
		mix, dist, ok := workload.YCSBMix(part[0])
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown YCSB workload %q\n", part)
			os.Exit(2)
		}
		if *distF != "" {
			dist = *distF
		}
		mixes = append(mixes, column{"YCSB-" + strings.ToUpper(part), mix, dist})
	}
	mixes = append(mixes, column{"80/10/10", workload.Mix801010, *distF})
	kinds := []mirror.Kind{
		mirror.OrigDRAM, mirror.OrigNVMM, mirror.Izraelevitz,
		mirror.NVTraverse, mirror.MirrorDRAM, mirror.MirrorNVMM,
	}

	fmt.Printf("%s, range %d, %d threads, %v per cell (Mops/s)\n",
		*structure, *keyRange, *threads, *duration)
	fmt.Printf("%-12s", "engine")
	for _, m := range mixes {
		fmt.Printf("%10s", m.name)
	}
	fmt.Println()

	for _, kind := range kinds {
		fmt.Printf("%-12s", kind)
		for _, m := range mixes {
			rt := mirror.New(mirror.Options{
				Kind:            kind,
				Words:           *keyRange*24 + 1<<20,
				Latency:         *latency,
				DisableTracking: true,
			})
			ctx := rt.NewCtx()
			var set mirror.Set
			switch *structure {
			case "list":
				set = rt.NewList(ctx)
			case "hashtable":
				set = rt.NewHashTable(ctx, pow2(*keyRange/2))
			case "bst":
				set = rt.NewBST(ctx)
			case "skiplist":
				set = rt.NewSkipList(ctx)
			default:
				fmt.Fprintf(os.Stderr, "unknown structure %q\n", *structure)
				os.Exit(2)
			}
			target := workload.Target{
				Name:          *structure,
				SortedPrefill: *structure == "list",
				NewWorker: func() workload.Worker {
					return worker{set, rt.NewCtx()}
				},
			}
			workload.PrefillHalf(target, uint64(*keyRange), 1)
			res := workload.Run(target, workload.Spec{
				KeyRange: uint64(*keyRange),
				Mix:      m.mix,
				Threads:  *threads,
				Duration: *duration,
				Seed:     1,
				Dist:     m.dist,
				Skew:     *skew,
			})
			fmt.Printf("%10.3f", res.MopsPerSec())
		}
		fmt.Println()
	}
}

type worker struct {
	set mirror.Set
	ctx *mirror.Ctx
}

func (w worker) Insert(key, val uint64) bool { return w.set.Insert(w.ctx, key, val) }
func (w worker) Delete(key uint64) bool      { return w.set.Delete(w.ctx, key) }
func (w worker) Contains(key uint64) bool    { return w.set.Contains(w.ctx, key) }

func pow2(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}
