// ycsb runs the YCSB-style workloads of §6.1 (A: 50% reads, B: 95% reads,
// C: read-only, plus the 80/10/10 mix) on a chosen structure under every
// persistence engine, printing a throughput comparison — a miniature
// interactive version of the paper's evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mirror"
	"mirror/internal/workload"
)

func main() {
	var (
		structure = flag.String("structure", "hashtable", "list|hashtable|bst|skiplist")
		keyRange  = flag.Int("range", 1<<16, "key range (prefilled to half)")
		threads   = flag.Int("threads", 4, "worker goroutines")
		duration  = flag.Duration("duration", 300*time.Millisecond, "window per cell")
		latency   = flag.Bool("latency", true, "apply DRAM/NVMM latency models")
	)
	flag.Parse()

	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"YCSB-A", workload.YCSBA},
		{"YCSB-B", workload.YCSBB},
		{"YCSB-C", workload.YCSBC},
		{"80/10/10", workload.Mix801010},
	}
	kinds := []mirror.Kind{
		mirror.OrigDRAM, mirror.OrigNVMM, mirror.Izraelevitz,
		mirror.NVTraverse, mirror.MirrorDRAM, mirror.MirrorNVMM,
	}

	fmt.Printf("%s, range %d, %d threads, %v per cell (Mops/s)\n",
		*structure, *keyRange, *threads, *duration)
	fmt.Printf("%-12s", "engine")
	for _, m := range mixes {
		fmt.Printf("%10s", m.name)
	}
	fmt.Println()

	for _, kind := range kinds {
		fmt.Printf("%-12s", kind)
		for _, m := range mixes {
			rt := mirror.New(mirror.Options{
				Kind:            kind,
				Words:           *keyRange*24 + 1<<20,
				Latency:         *latency,
				DisableTracking: true,
			})
			ctx := rt.NewCtx()
			var set mirror.Set
			switch *structure {
			case "list":
				set = rt.NewList(ctx)
			case "hashtable":
				set = rt.NewHashTable(ctx, pow2(*keyRange/2))
			case "bst":
				set = rt.NewBST(ctx)
			case "skiplist":
				set = rt.NewSkipList(ctx)
			default:
				fmt.Fprintf(os.Stderr, "unknown structure %q\n", *structure)
				os.Exit(2)
			}
			target := workload.Target{
				Name:          *structure,
				SortedPrefill: *structure == "list",
				NewWorker: func() workload.Worker {
					return worker{set, rt.NewCtx()}
				},
			}
			workload.PrefillHalf(target, uint64(*keyRange), 1)
			res := workload.Run(target, workload.Spec{
				KeyRange: uint64(*keyRange),
				Mix:      m.mix,
				Threads:  *threads,
				Duration: *duration,
				Seed:     1,
			})
			fmt.Printf("%10.3f", res.MopsPerSec())
		}
		fmt.Println()
	}
}

type worker struct {
	set mirror.Set
	ctx *mirror.Ctx
}

func (w worker) Insert(key, val uint64) bool { return w.set.Insert(w.ctx, key, val) }
func (w worker) Delete(key uint64) bool      { return w.set.Delete(w.ctx, key) }
func (w worker) Contains(key uint64) bool    { return w.set.Contains(w.ctx, key) }

func pow2(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}
