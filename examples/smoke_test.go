// Package examples holds runnable demonstration programs. This smoke test
// builds and runs every one of them with short budgets, so a refactor that
// breaks an example (they are main packages, invisible to the library's
// unit tests) fails CI instead of rotting silently.
package examples

import (
	"bytes"
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// run executes `go run ./<dir> args...` from the examples directory with a
// hard deadline, returning combined output.
func run(t *testing.T, dir string, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", append([]string{"run", "./" + dir}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run ./%s %s: %v\n%s", dir, strings.Join(args, " "), err, out.String())
	}
	return out.String()
}

func TestQuickstartSmoke(t *testing.T) {
	t.Parallel()
	out := run(t, "quickstart")
	if !strings.Contains(out, "recover") && !strings.Contains(out, "Recover") {
		t.Errorf("quickstart output never mentions recovery:\n%s", out)
	}
}

func TestKVStoreSmoke(t *testing.T) {
	t.Parallel()
	// No stdin: the built-in demo script exercises put/crash/recover/get.
	out := run(t, "kvstore")
	if out == "" {
		t.Error("kvstore demo produced no output")
	}
}

func TestCrashRecoverySmoke(t *testing.T) {
	t.Parallel()
	out := run(t, "crashrecovery", "-cycles", "2", "-workers", "2", "-keys", "16", "-seed", "1")
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("crashrecovery reported violations:\n%s", out)
	}
}

func TestTaskQueueSmoke(t *testing.T) {
	t.Parallel()
	out := run(t, "taskqueue", "-tasks", "200", "-workers", "2", "-crashes", "1", "-seed", "1")
	if strings.Contains(out, "LOST") || strings.Contains(out, "DUPLICATE") {
		t.Errorf("taskqueue reported lost or duplicated tasks:\n%s", out)
	}
}

func TestYCSBSmoke(t *testing.T) {
	t.Parallel()
	out := run(t, "ycsb",
		"-structure", "hashtable", "-range", "4096",
		"-threads", "2", "-duration", "10ms", "-latency=false")
	if !strings.Contains(out, "hashtable") {
		t.Errorf("ycsb output never mentions the structure:\n%s", out)
	}
}
