// Package mirror is a Go reproduction of "Mirror: Making Lock-Free Data
// Structures Persistent" (Friedman, Petrank, Ramalhete — PLDI 2021).
//
// Mirror converts any linearizable lock-free data structure into a durably
// linearizable one by keeping two replicas of every mutable word: a
// persistent replica on NVMM — updated first, with an explicit flush and
// fence — and a volatile replica (ideally on DRAM) from which all reads are
// served. A per-word sequence number updated by double-word CAS keeps the
// replicas in lock step; reads never need to be persisted because nothing
// becomes readable before it is durable.
//
// Go exposes neither persistent memory nor cache-line flushes, so this
// package runs the full system against a simulated memory substrate
// (internal/pmem): word-addressable devices with clwb/sfence semantics, a
// crash model with an eviction adversary, and a calibrated latency model
// reproducing the DRAM/NVMM cost ratios of the paper's platform. Every
// mechanism of the paper — the patomic cell protocol, the dual-replica
// allocator, trace-based recovery with offline GC, and the baseline
// transformations it is evaluated against — is implemented underneath this
// facade; see DESIGN.md for the inventory.
//
// # Quick start
//
//	rt := mirror.New(mirror.Options{})        // MirrorDRAM runtime
//	ctx := rt.NewCtx()                        // one per goroutine
//	set := rt.NewHashTable(ctx, 1024)         // durable lock-free hash table
//	set.Insert(ctx, 42, 100)
//	rt.Crash(mirror.CrashDropAll, 0)          // simulated power failure
//	rt.Recover()                              // trace, copy, rebuild
//	ctx = rt.NewCtx()                         // contexts do not survive crashes
//	_, ok := set.Get(ctx, 42)                 // true: the insert was durable
package mirror

import (
	"fmt"
	"math/rand"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/queue"
	"mirror/internal/structures/skiplist"
)

// Kind selects the persistence engine a runtime uses. MirrorDRAM is the
// paper's contribution; the others are the baselines it is evaluated
// against, runnable through the identical API — the transformation is a
// one-line change, as §3.2 promises.
type Kind = engine.Kind

// Engine kinds.
const (
	// OrigDRAM runs the original non-durable structures on DRAM.
	OrigDRAM = engine.OrigDRAM
	// OrigNVMM runs the original non-durable structures on NVMM.
	OrigNVMM = engine.OrigNVMM
	// Izraelevitz applies the flush-everything general transformation.
	Izraelevitz = engine.Izraelevitz
	// NVTraverse applies the traversal-form transformation (PLDI'20).
	NVTraverse = engine.NVTraverse
	// MirrorDRAM is Mirror with the volatile replica on DRAM (§6.2).
	MirrorDRAM = engine.MirrorDRAM
	// MirrorNVMM is Mirror with both replicas on NVMM (§6.3).
	MirrorNVMM = engine.MirrorNVMM
)

// Ctx is a per-goroutine operation context (thread handle). Contexts are
// invalidated by Crash/Recover; create fresh ones afterwards.
type Ctx = engine.Ctx

// Set is a durable (engine permitting) concurrent set with values.
type Set = structures.Set

// CrashPolicy selects the eviction adversary applied at a simulated power
// failure.
type CrashPolicy = pmem.CrashPolicy

// Crash policies.
const (
	// CrashDropAll loses every unfenced write.
	CrashDropAll = pmem.CrashDropAll
	// CrashKeepAll persists every write, fenced or not.
	CrashKeepAll = pmem.CrashKeepAll
	// CrashRandom flips a coin per 8-byte word.
	CrashRandom = pmem.CrashRandom
)

// KeyMax is the largest usable key; keys must also be nonzero.
const KeyMax = structures.KeyMax

// Options configure a Runtime.
type Options struct {
	// Kind is the persistence engine (default MirrorDRAM).
	Kind Kind
	// Words is the capacity of each simulated device in 8-byte words
	// (default 4Mi words = 32 MiB per device).
	Words int
	// Latency applies the DRAM/NVMM latency models; leave it off except
	// for benchmarking (default off).
	Latency bool
	// DisableTracking turns off the persistent media image; crashes
	// become unavailable but every operation gets a little faster.
	DisableTracking bool
}

// Runtime owns the simulated devices, the allocator, and the persistent
// roots. All structures created from one runtime share its memory and are
// recovered together.
type Runtime struct {
	eng engine.Engine

	mu       sync.Mutex
	tracers  []engine.Tracer
	nextRoot int
}

// rootFieldsPerRuntime bounds how many structures one runtime can hold
// (the hash table takes two root fields, the others one).
const rootFieldsPerRuntime = 16

// New creates a runtime.
func New(opts Options) *Runtime {
	words := opts.Words
	if words == 0 {
		words = 1 << 22
	}
	return &Runtime{eng: engine.New(engine.Config{
		Kind:       opts.Kind,
		Words:      words,
		RootFields: rootFieldsPerRuntime,
		Latency:    opts.Latency,
		Track:      !opts.DisableTracking,
	})}
}

// Engine exposes the underlying persistence engine for advanced use.
func (r *Runtime) Engine() engine.Engine { return r.eng }

// Kind returns the runtime's engine kind.
func (r *Runtime) Kind() Kind { return r.eng.Kind() }

// NewCtx creates a per-goroutine context.
func (r *Runtime) NewCtx() *Ctx { return r.eng.NewCtx() }

func (r *Runtime) takeRoots(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nextRoot+n > rootFieldsPerRuntime {
		panic("mirror: too many structures for one runtime")
	}
	f := r.nextRoot
	r.nextRoot += n
	return f
}

func (r *Runtime) register(tr engine.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracers = append(r.tracers, tr)
}

// NewList creates a durable Harris linked list.
func (r *Runtime) NewList(c *Ctx) Set {
	f := r.takeRoots(1)
	s := list.New(r.eng, f)
	r.register(s.Tracer())
	return s
}

// NewHashTable creates a durable hash table with the given power-of-two
// bucket count.
func (r *Runtime) NewHashTable(c *Ctx, buckets int) Set {
	f := r.takeRoots(2)
	s := hashtable.NewAt(r.eng, c, buckets, f)
	r.register(s.Tracer())
	return s
}

// NewBST creates a durable Natarajan–Mittal binary search tree.
func (r *Runtime) NewBST(c *Ctx) Set {
	f := r.takeRoots(1)
	s := bst.NewAt(r.eng, c, f)
	r.register(s.Tracer())
	return s
}

// NewSkipList creates a durable Fraser-style skip list.
func (r *Runtime) NewSkipList(c *Ctx) Set {
	f := r.takeRoots(1)
	s := skiplist.NewAt(r.eng, c, f)
	r.register(s.Tracer())
	return s
}

// Queue is a durable lock-free Michael–Scott FIFO queue — the
// transformation applied beyond sets (see internal/structures/queue).
type Queue = queue.Queue

// NewQueue creates a durable FIFO queue.
func (r *Runtime) NewQueue(c *Ctx) *Queue {
	f := r.takeRoots(2)
	q := queue.NewAt(r.eng, c, f)
	r.register(q.Tracer())
	return q
}

// Freeze makes every device operation panic, unwinding in-flight
// operations so a crash can be taken at an arbitrary moment. Only crash
// tests and demos need it; Crash freezes implicitly.
func (r *Runtime) Freeze() { r.eng.Freeze() }

// Crash simulates a full-system power failure: volatile devices are wiped,
// and unfenced persistent writes survive according to the policy. All
// goroutines operating on the runtime must have unwound (see Freeze).
func (r *Runtime) Crash(policy CrashPolicy, seed int64) {
	r.eng.Crash(policy, rand.New(rand.NewSource(seed)))
}

// Recover rebuilds all volatile state after Crash: the registered tracers
// enumerate every reachable object, the volatile replica is reconstructed,
// and unreachable memory is reclaimed (§4.3.3). Structures created before
// the crash remain usable afterwards; contexts do not — create fresh ones.
func (r *Runtime) Recover() {
	r.mu.Lock()
	tracers := append([]engine.Tracer(nil), r.tracers...)
	r.mu.Unlock()
	r.eng.Recover(func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		for _, tr := range tracers {
			tr(read, visit)
		}
	})
}

// RecoverParallel is Recover with a bounded worker pool: the registered
// tracers are dealt round-robin across parallelism shards, and the trace,
// volatile-replica rebuild, and allocator reconstruction all run on that
// many goroutines (see internal/recovery). parallelism <= 1 is exactly
// Recover. Structures within one shard are traced sequentially; a runtime
// holding a single large structure gains nothing here — trace it through
// engine.RecoverWith with its ShardedTracer instead.
func (r *Runtime) RecoverParallel(parallelism int) {
	r.mu.Lock()
	tracers := append([]engine.Tracer(nil), r.tracers...)
	r.mu.Unlock()
	sharded := func(shard, shards int) engine.Tracer {
		return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
			for i := shard; i < len(tracers); i += shards {
				tracers[i](read, visit)
			}
		}
	}
	r.eng.RecoverWith(sharded(0, 1), engine.RecoverOptions{
		Parallelism: parallelism,
		Sharded:     sharded,
	})
}

// Counters reports the cumulative number of flush and fence instructions
// issued by the runtime's devices.
func (r *Runtime) Counters() (flushes, fences uint64) { return r.eng.Counters() }

// Report summarizes the runtime's resource and persistence activity.
type Report struct {
	Kind      Kind
	LiveWords uint64 // allocated words in the engine's cell layout
	Replicas  int    // device copies holding them (bytes = LiveWords*8*Replicas)
	Flushes   uint64
	Fences    uint64
}

// String renders the report for logs and examples.
func (rep Report) String() string {
	return fmt.Sprintf("%v: %d live words x%d replicas (%.1f MiB), %d flushes, %d fences",
		rep.Kind, rep.LiveWords, rep.Replicas,
		float64(rep.LiveWords*uint64(rep.Replicas))*8/(1<<20),
		rep.Flushes, rep.Fences)
}

// Report returns a snapshot of the runtime's activity.
func (r *Runtime) Report() Report {
	words, replicas := r.eng.Footprint()
	fl, fe := r.eng.Counters()
	return Report{
		Kind: r.eng.Kind(), LiveWords: words, Replicas: replicas,
		Flushes: fl, Fences: fe,
	}
}
