package mirror

// This file regenerates the paper's evaluation as Go benchmarks: one
// benchmark per panel of Figure 6 and Figure 7, plus ablation benchmarks
// for the design choices DESIGN.md calls out. Each panel benchmark runs
// the corresponding harness panel at a reduced scale and reports one
// custom metric per competitor, named "<Competitor>_Mops" — the series the
// figure plots. The cmd/mirrorbench tool runs the same panels at full
// sweep ranges and durations.
//
// Run with: go test -bench=. -benchmem

import (
	"strings"
	"testing"
	"time"

	"mirror/internal/durablequeue"
	"mirror/internal/dwcas"
	"mirror/internal/engine"
	"mirror/internal/harness"
	"mirror/internal/pmem"
	"mirror/internal/structures/queue"
	"mirror/internal/workload"
)

// Substrate microbenchmarks: the simulated-device fast path must disappear
// from profiles for the engine comparisons above to mean anything. Load is
// the zero-read-overhead claim in miniature — one inlined gate compare and
// the atomic word read; Store adds the sequentially-consistent store
// (XCHG), which is the hardware floor. Run with:
//
//	go test -bench BenchmarkDevice -benchmem

func newBenchDevice() *pmem.Device {
	return pmem.New(pmem.Config{Name: "bench", Words: 1 << 16})
}

func BenchmarkDeviceFastPathLoad(b *testing.B) {
	d := newBenchDevice()
	d.Store(1, 42)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += d.Load(uint64(i&0xfff) + 1)
	}
	benchSink = sink
}

func BenchmarkDeviceFastPathStore(b *testing.B) {
	d := newBenchDevice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Store(uint64(i&0xfff)+1, uint64(i))
	}
}

func BenchmarkDeviceFastPathLoadStore(b *testing.B) {
	d := newBenchDevice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i&0xfff) + 1
		d.Store(off, d.Load(off)+1)
	}
}

func BenchmarkDeviceFastPathLoadParallel(b *testing.B) {
	d := newBenchDevice()
	for off := uint64(1); off <= 1<<12; off++ {
		d.Store(off, off)
	}
	b.RunParallel(func(pb *testing.PB) {
		var sink, i uint64
		for pb.Next() {
			sink += d.Load(i&0xfff + 1)
			i++
		}
		benchSink = sink
	})
}

func BenchmarkDeviceFlushFence(b *testing.B) {
	d := pmem.New(pmem.Config{Name: "bench", Words: 1 << 16, Persistent: true, Track: true})
	b.RunParallel(func(pb *testing.PB) {
		var fs pmem.FlushSet
		var i uint64
		for pb.Next() {
			off := i&0xfff + 1
			d.Store(off, i)
			d.Flush(&fs, off)
			d.Fence(&fs)
			i++
		}
	})
}

// benchSink defeats dead-code elimination of benchmark loads.
var benchSink uint64

// benchOptions keeps panel benchmarks quick while preserving competitor
// ratios: a short window, one mid-size thread point, heavy size scaling.
func benchOptions() harness.Options {
	return harness.Options{
		Duration: 60 * time.Millisecond,
		Scale:    512,
		Threads:  []int{2},
		Latency:  true,
		Seed:     1,
	}
}

func benchmarkPanel(b *testing.B, id string) {
	p, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown panel %s", id)
	}
	// Trim long sweeps to three representative points for bench time.
	if len(p.Sizes) > 3 {
		p.Sizes = []int{p.Sizes[0], p.Sizes[len(p.Sizes)/2], p.Sizes[len(p.Sizes)-1]}
	}
	if len(p.UpdatePcts) > 3 {
		p.UpdatePcts = []int{0, 20, 100}
	}
	var last *harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = p.Run(benchOptions())
	}
	b.StopTimer()
	row := last.Rows[len(last.Rows)/2]
	for i, col := range last.Columns {
		b.ReportMetric(row.Cells[i], strings.ReplaceAll(col, " ", "")+"_Mops")
	}
}

// Figure 6: Mirror's volatile replica on DRAM.

func BenchmarkFig6a_ListThreads(b *testing.B)     { benchmarkPanel(b, "fig6a") }
func BenchmarkFig6b_ListSizes(b *testing.B)       { benchmarkPanel(b, "fig6b") }
func BenchmarkFig6c_ListUpdates(b *testing.B)     { benchmarkPanel(b, "fig6c") }
func BenchmarkFig6d_HashThreads(b *testing.B)     { benchmarkPanel(b, "fig6d") }
func BenchmarkFig6e_HashSizes(b *testing.B)       { benchmarkPanel(b, "fig6e") }
func BenchmarkFig6f_HashUpdates(b *testing.B)     { benchmarkPanel(b, "fig6f") }
func BenchmarkFig6g_BSTThreads(b *testing.B)      { benchmarkPanel(b, "fig6g") }
func BenchmarkFig6h_BSTSizes(b *testing.B)        { benchmarkPanel(b, "fig6h") }
func BenchmarkFig6i_BSTUpdates(b *testing.B)      { benchmarkPanel(b, "fig6i") }
func BenchmarkFig6j_SkipListThreads(b *testing.B) { benchmarkPanel(b, "fig6j") }
func BenchmarkFig6k_SkipListSizes(b *testing.B)   { benchmarkPanel(b, "fig6k") }
func BenchmarkFig6l_SkipListUpdates(b *testing.B) { benchmarkPanel(b, "fig6l") }
func BenchmarkFig6m_CmapThreads(b *testing.B)     { benchmarkPanel(b, "fig6m") }
func BenchmarkFig6n_CmapUpdates(b *testing.B)     { benchmarkPanel(b, "fig6n") }
func BenchmarkFig6o_Hash32MUpdates(b *testing.B)  { benchmarkPanel(b, "fig6o") }

// Figure 7: both replicas on NVMM.

func BenchmarkFig7a_ListThreads(b *testing.B)     { benchmarkPanel(b, "fig7a") }
func BenchmarkFig7b_ListSizes(b *testing.B)       { benchmarkPanel(b, "fig7b") }
func BenchmarkFig7c_ListUpdates(b *testing.B)     { benchmarkPanel(b, "fig7c") }
func BenchmarkFig7d_HashThreads(b *testing.B)     { benchmarkPanel(b, "fig7d") }
func BenchmarkFig7e_HashSizes(b *testing.B)       { benchmarkPanel(b, "fig7e") }
func BenchmarkFig7f_HashUpdates(b *testing.B)     { benchmarkPanel(b, "fig7f") }
func BenchmarkFig7g_BSTThreads(b *testing.B)      { benchmarkPanel(b, "fig7g") }
func BenchmarkFig7h_BSTSizes(b *testing.B)        { benchmarkPanel(b, "fig7h") }
func BenchmarkFig7i_BSTUpdates(b *testing.B)      { benchmarkPanel(b, "fig7i") }
func BenchmarkFig7j_SkipListThreads(b *testing.B) { benchmarkPanel(b, "fig7j") }
func BenchmarkFig7k_SkipListSizes(b *testing.B)   { benchmarkPanel(b, "fig7k") }
func BenchmarkFig7l_SkipListUpdates(b *testing.B) { benchmarkPanel(b, "fig7l") }

// Ablations.

// BenchmarkAblationPersistenceInstructions measures flushes and fences per
// update operation for each durable engine — the instruction-count account
// behind the throughput differences (§1: "good algorithms use these
// instructions sparingly").
func BenchmarkAblationPersistenceInstructions(b *testing.B) {
	for _, kind := range []engine.Kind{engine.Izraelevitz, engine.NVTraverse, engine.MirrorDRAM} {
		b.Run(kind.String(), func(b *testing.B) {
			rt := New(Options{Kind: kind, Words: 1 << 21})
			c := rt.NewCtx()
			s := rt.NewList(c)
			fl0, fe0 := rt.Counters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := uint64(i%512 + 1)
				s.Insert(c, key, key)
				s.Delete(c, key)
			}
			b.StopTimer()
			fl1, fe1 := rt.Counters()
			ops := float64(2 * b.N)
			b.ReportMetric(float64(fl1-fl0)/ops, "flushes/op")
			b.ReportMetric(float64(fe1-fe0)/ops, "fences/op")
		})
	}
}

// BenchmarkAblationDWCASPath compares the native CMPXCHG16B double-word
// CAS against the portable striped-seqlock emulation underneath the same
// Mirror workload — quantifying what the hardware instruction buys.
func BenchmarkAblationDWCASPath(b *testing.B) {
	for _, fallback := range []bool{false, true} {
		name := "native"
		if fallback {
			name = "fallback"
		}
		b.Run(name, func(b *testing.B) {
			if fallback {
				dwcas.SetFallback(true)
				defer dwcas.SetFallback(false)
			} else if !dwcas.Native() {
				b.Skip("no native DWCAS")
			}
			rt := New(Options{Kind: MirrorDRAM, Words: 1 << 21})
			c := rt.NewCtx()
			s := rt.NewHashTable(c, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := uint64(i%2048 + 1)
				s.Insert(c, key, key)
				s.Delete(c, key)
			}
		})
	}
}

// BenchmarkAblationReplicaPlacement isolates the paper's second idea: the
// same Mirror protocol with the volatile replica on DRAM versus on NVMM,
// on a read-heavy workload (§6.3's question).
func BenchmarkAblationReplicaPlacement(b *testing.B) {
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM} {
		b.Run(kind.String(), func(b *testing.B) {
			rt := New(Options{Kind: kind, Words: 1 << 21, Latency: true, DisableTracking: true})
			c := rt.NewCtx()
			s := rt.NewHashTable(c, 4096)
			for k := uint64(1); k <= 4096; k++ {
				s.Insert(c, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Contains(c, uint64(i%8192+1))
			}
		})
	}
}

// BenchmarkAblationTraversalHints measures what the traversal/critical
// read distinction buys NVTraverse: the same list with every read treated
// as critical degenerates to the Izraelevitz cost.
func BenchmarkAblationTraversalHints(b *testing.B) {
	run := func(b *testing.B, kind engine.Kind) {
		rt := New(Options{Kind: kind, Words: 1 << 21, Latency: true, DisableTracking: true})
		c := rt.NewCtx()
		s := rt.NewList(c)
		for k := uint64(1); k <= 128; k++ {
			s.Insert(c, k, k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Contains(c, uint64(i%256+1))
		}
	}
	b.Run("NVTraverse", func(b *testing.B) { run(b, engine.NVTraverse) })
	b.Run("Izraelevitz", func(b *testing.B) { run(b, engine.Izraelevitz) })
	b.Run("Mirror", func(b *testing.B) { run(b, engine.MirrorDRAM) })
}

// BenchmarkQueueComparison pits the Mirror-transformed Michael–Scott
// queue against the hand-made durable queue (Friedman et al. style) and
// the same queue under the other general transformations — the queue
// analogue of the paper's sets-vs-hand-made comparison.
func BenchmarkQueueComparison(b *testing.B) {
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
		b.Run(kind.String(), func(b *testing.B) {
			e := engine.New(engine.Config{Kind: kind, Words: 1 << 22, Latency: true})
			c := e.NewCtx()
			q := queue.New(e, c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(c, uint64(i))
				q.Dequeue(c)
			}
		})
	}
	b.Run("HandMadeDurable", func(b *testing.B) {
		q := durablequeue.New(durablequeue.Config{Words: 1 << 22, Latency: true})
		c := q.NewCtx()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(c, uint64(i))
			q.Dequeue(c)
		}
	})
}

// BenchmarkWorkloadGenerator measures the generator's own overhead so
// throughput numbers can be attributed to the structures, not the driver.
func BenchmarkWorkloadGenerator(b *testing.B) {
	target := workload.Target{
		Name:      "noop",
		NewWorker: func() workload.Worker { return noopWorker{} },
	}
	res := workload.Run(target, workload.Spec{
		KeyRange: 1 << 20,
		Mix:      workload.Mix801010,
		Threads:  2,
		Duration: 50 * time.Millisecond,
		Seed:     1,
	})
	b.ReportMetric(res.MopsPerSec(), "Mops")
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

type noopWorker struct{}

func (noopWorker) Insert(key, val uint64) bool { return true }
func (noopWorker) Delete(key uint64) bool      { return true }
func (noopWorker) Contains(key uint64) bool    { return true }
