module mirror

go 1.22
